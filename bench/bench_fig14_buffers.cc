// Figure 14: LinkGuardian packet-buffer usage (TX / RX / TX-NB) per link
// speed and loss rate, measured via periodic control-plane polling during
// the line-rate stress test.
#include <cstdio>

#include "bench_common.h"
#include "harness/stress.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Figure 14", "Packet buffer usage (KB): min/p25/p50/p75/max");

  for (BitRate rate : {gbps(25), gbps(100)}) {
    std::printf("\n--- %s link ---\n", rate == gbps(25) ? "25G" : "100G");
    TablePrinter t({"Loss rate", "Buffer", "min", "p25", "p50", "p75", "max"});
    for (double loss : {1e-5, 1e-4, 1e-3}) {
      for (bool nb : {false, true}) {
        StressConfig c;
        c.rate = rate;
        c.loss_rate = loss;
        c.lg.preserve_order = !nb;
        c.packets = bench::scaled(
            std::max<std::int64_t>(200'000, static_cast<std::int64_t>(50.0 / loss)),
            50'000);
        if (c.packets > 5'000'000) c.packets = 5'000'000;
        c.seed = 99 + (nb ? 7 : 0);
        StressResult r = run_stress(c);
        auto row = [&](const char* name, lgsim::PercentileTracker& p) {
          t.add_row({TablePrinter::sci(loss, 0), name,
                     TablePrinter::fmt(p.min() / 1000.0, 1),
                     TablePrinter::fmt(p.percentile(25) / 1000.0, 1),
                     TablePrinter::fmt(p.percentile(50) / 1000.0, 1),
                     TablePrinter::fmt(p.percentile(75) / 1000.0, 1),
                     TablePrinter::fmt(p.max() / 1000.0, 1)});
        };
        if (nb) {
          row("TX (NB)", r.tx_buffer_bytes);
        } else {
          row("TX", r.tx_buffer_bytes);
          row("RX", r.rx_buffer_bytes);
        }
      }
    }
    t.print();
  }
  std::printf(
      "\nPaper anchors: at 25G TX <= ~3.6KB and RX <= ~60KB; at 100G both "
      "<= ~90KB; NB needs no RX buffer and ~3x less TX at 100G. 100G "
      "datacenter switches carry 16-42MB of buffer, so this is negligible.\n");
  return 0;
}
