// Figure 12: top-5% FCT for 2 MB DCTCP flows (Alibaba storage maximum) on a
// 100G link with ~1e-3 loss.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/fct.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Figure 12", "Top 5% FCTs for 2MB DCTCP flows on a 100G link");

  TablePrinter t({"Condition", "p20 (us)", "p50 (us)", "p95 (us)", "p99 (us)",
                  "p99.9 (us)", "max (us)", "affected trials"});
  // 4 conditions fanned out over LGSIM_BENCH_JOBS workers; rows match the
  // serial loop byte-for-byte.
  bench::TrafficConfig tc;
  tc.flow_bytes = 2'000'000;
  tc.trials = bench::scaled(4'000, 300);
  tc.inter_trial_gap = usec(50);
  tc.seed_base = 3000;
  const std::vector<FctResult> results = run_fct_grid(bench::fct_grid(tc));

  std::size_t i = 0;
  for (Protection pr : {Protection::kNoLoss, Protection::kLg, Protection::kLgNb,
                        Protection::kLossOnly}) {
    const FctResult& r = results[i++];
    t.add_row({protection_name(pr), TablePrinter::fmt(r.p(20), 1),
               TablePrinter::fmt(r.p(50), 1), TablePrinter::fmt(r.p(95), 1),
               TablePrinter::fmt(r.p(99), 1), TablePrinter::fmt(r.p(99.9), 1),
               TablePrinter::fmt(r.fct_us.max(), 1),
               std::to_string(r.trials_with_wire_loss)});
  }
  t.print();
  std::printf(
      "\nA 2MB flow spans ~1382 packets, so at 1e-3 ~75%% of trials see at "
      "least one corruption (paper: ~80%%); LG masks them all, LG_NB leaves a "
      "longer tail when cwnd cuts hit flows with many pending bytes.\n");
  return 0;
}
