// Figure 21 (Appendix B.3): CUBIC on a 25G link and BBR on a 10G link with
// 1e-3 loss — LinkGuardian works for loss-based and rate-based transports.
#include <cstdio>

#include "bench_common.h"
#include "harness/timeline.h"
#include "util/table.h"

namespace {

void run_one(lgsim::harness::Transport tr, lgsim::BitRate rate, const char* title) {
  using namespace lgsim;
  using namespace lgsim::harness;
  TimelineConfig c;
  c.transport = tr;
  c.rate = rate;
  c.loss_rate = 1e-3;
  c.mean_burst = 1.0;
  c.t_corruption = msec(bench::scaled(200, 40));
  c.t_lg = 2 * c.t_corruption;
  c.t_end = 4 * c.t_corruption;
  c.sample_period = c.t_end / 100;
  const TimelineResult r = run_timeline(c);

  std::printf("\n--- %s ---\n", title);
  TablePrinter t({"t (ms)", "goodput (Gbps)", "qdepth (KB)", "e2e retx (cum)"});
  const auto& g = r.goodput_gbps.samples();
  for (std::size_t i = 0; i < g.size(); i += 5) {
    t.add_row({TablePrinter::fmt(to_msec(g[i].time), 0),
               TablePrinter::fmt(g[i].value, 2),
               TablePrinter::fmt(r.qdepth_bytes.samples()[i].value / 1000.0, 1),
               TablePrinter::fmt(r.e2e_retx.samples()[i].value, 0)});
  }
  t.print();
  std::printf(
      "phases: before %.2f Gbps | corruption %.2f Gbps | with LG %.2f Gbps\n",
      r.goodput_before(), r.goodput_during_loss(), r.goodput_with_lg());
}

}  // namespace

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Figure 21", "CUBIC (25G) and BBR (10G) timelines with 1e-3 loss");
  run_one(Transport::kCubic, gbps(25), "Fig 21a: CUBIC, 25G");
  run_one(Transport::kBbr, gbps(10), "Fig 21b: BBR, 10G");
  std::printf(
      "\nExpected shape: CUBIC collapses under loss and recovers with LG "
      "(with congestion losses reappearing as the queue fills); BBR is "
      "mostly loss-agnostic but still gains a little from LG.\n");
  return 0;
}
